package waveform

import (
	"math/rand"
	"testing"
)

// sumTestPulse builds a random triangular pulse for merge tests.
func sumTestPulse(r *rand.Rand) PWL {
	start := r.Float64() * 5
	return TrianglePulse(start, 0.05+r.Float64()*0.3, 0.05+r.Float64()*0.5, r.Float64())
}

// TestSumMatchesPairwiseAdd pins the k-way merge to the reference
// pairwise cascade: the two must agree as functions everywhere.
func TestSumMatchesPairwiseAdd(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(6)
		ws := make([]PWL, n)
		for i := range ws {
			ws[i] = sumTestPulse(r)
		}
		cascade := Zero()
		for _, w := range ws {
			cascade = Add(cascade, w)
		}
		merged := Sum(ws...)
		if !Equal(cascade, merged, 1e-12) {
			t.Fatalf("trial %d (n=%d): k-way sum differs from cascade:\n%v\n%v",
				trial, n, cascade, merged)
		}
	}
}

// TestSumPairBitIdentical: for zero, one and two waveforms the merge
// takes the exact code path of Add, so results are bit-identical.
func TestSumPairBitIdentical(t *testing.T) {
	a := TrianglePulse(1, 0.2, 0.3, 0.6)
	b := TrianglePulse(1.1, 0.1, 0.4, 0.4)
	want := Add(a, b)
	got := Sum(a, b)
	wp, gp := want.Points(), got.Points()
	if len(wp) != len(gp) {
		t.Fatalf("point counts differ: %d vs %d", len(wp), len(gp))
	}
	for i := range wp {
		if wp[i] != gp[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, wp[i], gp[i])
		}
	}
	if one := Sum(a); !Equal(one, a, 0) {
		t.Fatal("Sum of one waveform must be itself")
	}
	if !Sum().IsZero() {
		t.Fatal("empty Sum must be zero")
	}
}

// TestAccumulatorReuse checks that the scratch buffer is reused across
// Reset/Sum cycles without corrupting earlier copies.
func TestAccumulatorReuse(t *testing.T) {
	var acc Accumulator
	a := TrianglePulse(0, 0.1, 0.2, 0.5)
	b := TrianglePulse(0.5, 0.1, 0.2, 0.3)
	acc.Add(a)
	acc.Add(b)
	first := acc.SumCopy()
	borrowed := func() PWL {
		acc.Reset()
		acc.Add(b)
		return acc.Sum()
	}()
	if !Equal(borrowed, b, 0) {
		t.Fatal("second Sum wrong")
	}
	if !Equal(first, Add(a, b), 1e-12) {
		t.Fatal("SumCopy must survive buffer reuse")
	}
	acc.Reset()
	if acc.Len() != 0 || !acc.Sum().IsZero() {
		t.Fatal("Reset must clear the accumulated set")
	}
}

// TestSubIntoMatchesSub pins the scratch-buffer subtraction to Sub.
func TestSubIntoMatchesSub(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	var buf []Point
	for trial := 0; trial < 100; trial++ {
		a, b := sumTestPulse(r), sumTestPulse(r)
		want := Sub(a, b)
		var got PWL
		got, buf = SubInto(a, b, buf)
		wp, gp := want.Points(), got.Points()
		if len(wp) != len(gp) {
			t.Fatalf("trial %d: point counts differ", trial)
		}
		for i := range wp {
			if wp[i] != gp[i] {
				t.Fatalf("trial %d point %d: %+v vs %+v", trial, i, wp[i], gp[i])
			}
		}
	}
}
