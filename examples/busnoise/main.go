// Busnoise: analyze simultaneous-switching crosstalk on a parallel
// bus. Adjacent bits of a routed bus couple to each other; the top-k
// aggressor addition set identifies which k couplings, switching
// together, produce the worst-case delay on the victim bit — the
// designer's answer to "how many neighbours do I actually have to
// consider switching simultaneously?"
package main

import (
	"fmt"
	"log"
	"strings"

	"topkagg"
)

// buildBus constructs a width-bit bus: each bit is a chain of `depth`
// buffers, and geometrically adjacent bits are coupled at every stage
// (nearest neighbour strongly, next-nearest weakly).
func buildBus(width, depth int) (*topkagg.Circuit, error) {
	var sb strings.Builder
	sb.WriteString("circuit bus\n")
	for b := 0; b < width; b++ {
		in := fmt.Sprintf("in%d", b)
		prev := in
		for d := 0; d < depth; d++ {
			out := fmt.Sprintf("b%d_s%d", b, d)
			fmt.Fprintf(&sb, "gate g%d_%d BUF_X1 %s -> %s\n", b, d, prev, out)
			// Bus wires are long: heavier ground cap than random logic.
			fmt.Fprintf(&sb, "net %s cg=6 rw=0.5 x=%d y=%d\n", out, d*15, b*2)
			prev = out
		}
	}
	// The middle bit is the timing-critical victim: constrain it.
	fmt.Fprintf(&sb, "output b%d_s%d\n", width/2, depth-1)
	// Coupling: nearest neighbours 3 fF per stage, next-nearest 0.8 fF.
	for b := 0; b < width; b++ {
		for d := 0; d < depth; d++ {
			if b+1 < width {
				fmt.Fprintf(&sb, "couple b%d_s%d b%d_s%d 3.0\n", b, d, b+1, d)
			}
			if b+2 < width {
				fmt.Fprintf(&sb, "couple b%d_s%d b%d_s%d 0.8\n", b, d, b+2, d)
			}
		}
	}
	return topkagg.ParseNetlistString(sb.String())
}

func main() {
	const width, depth = 8, 4
	c, err := buildBus(width, depth)
	if err != nil {
		log.Fatal(err)
	}
	m := topkagg.NewModel(c)
	an, err := m.Run(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d-bit bus, %d stages: %d coupling caps\n", width, depth, c.NumCouplings())
	fmt.Printf("victim bit %d delay: %.4f ns quiet, %.4f ns with all neighbours switching\n\n",
		width/2, an.Base.CircuitDelay(), an.CircuitDelay())

	res, err := topkagg.TopKAddition(m, 12, topkagg.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("worst-case delay vs number of simultaneously switching couplings:")
	for i, s := range res.PerK {
		frac := (s.Delay - res.BaseDelay) / (res.AllDelay - res.BaseDelay)
		fmt.Printf("  k=%-2d delay %.4f ns  (%.0f%% of full crosstalk penalty)\n", i+1, s.Delay, 100*frac)
	}
	top := res.Top()
	fmt.Printf("\nthe %d dominant couplings:\n", len(top.IDs))
	for _, id := range top.IDs {
		fmt.Printf("  %s\n", topkagg.CouplingString(c, id))
	}
	fmt.Println("\n(nearest-neighbour couplings of the victim's own stages should dominate)")
}
