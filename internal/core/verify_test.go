package core

import (
	"testing"

	"topkagg/internal/gen"
	"topkagg/internal/noise"
)

// TestVerifyTopNeverWorsens checks that verified selection never
// reports a worse measured curve than estimate-only selection.
func TestVerifyTopNeverWorsens(t *testing.T) {
	c, err := gen.BuildPaper("i1")
	if err != nil {
		t.Fatal(err)
	}
	m := noise.NewModel(c)
	plain, err := TopKElimination(m, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	verified, err := TopKElimination(m, 8, Options{VerifyTop: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(verified.PerK) != len(plain.PerK) {
		t.Fatalf("cardinalities differ: %d vs %d", len(verified.PerK), len(plain.PerK))
	}
	for i := range plain.PerK {
		if verified.PerK[i].Delay > plain.PerK[i].Delay+1e-9 {
			t.Fatalf("k=%d: verified selection worse (%.6f vs %.6f)",
				i+1, verified.PerK[i].Delay, plain.PerK[i].Delay)
		}
	}
}

// TestVerifyTopMatchesBruteForceSmall re-runs the exactness check with
// verification enabled: it must not break correctness.
func TestVerifyTopMatchesBruteForceSmall(t *testing.T) {
	m := model(t, threeCouplings)
	opt := Exact()
	opt.VerifyTop = 4
	res, err := TopKAddition(m, 3, opt)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := TopKAddition(m, 3, Exact())
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.PerK {
		if res.PerK[i].Delay < plain.PerK[i].Delay-1e-9 {
			t.Fatalf("k=%d: verified addition lost delay: %g vs %g",
				i+1, res.PerK[i].Delay, plain.PerK[i].Delay)
		}
	}
}
