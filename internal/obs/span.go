package obs

import "time"

// SpanSink receives completed spans. Implementations must be safe for
// concurrent use; the registry's histogram for the span path is
// updated regardless of the sink, so a sink is only needed for export
// (logging, OTLP bridges, test capture).
type SpanSink interface {
	// SpanEnd is called once per completed span with its full
	// slash-joined path (e.g. "serve.query/prepare"), start time and
	// duration.
	SpanEnd(path string, start time.Time, d time.Duration)
}

// SetSpanSink installs (or, with nil, removes) the sink completed
// spans are forwarded to. Safe to call concurrently with tracing.
// No-op on a nil registry.
func (r *Registry) SetSpanSink(s SpanSink) {
	if r == nil {
		return
	}
	r.sink.Store(spanSinkBox{s: s})
}

func (r *Registry) spanSink() SpanSink {
	if b, ok := r.sink.Load().(spanSinkBox); ok {
		return b.s
	}
	return nil
}

// Span is one timed region in a hierarchy. A nil Span (from a nil
// registry) is inert: Child returns nil and End does nothing, so
// tracing call sites need no enabled checks and a disabled span costs
// one pointer test — no clock read, no allocation.
type Span struct {
	r     *Registry
	path  string
	start time.Time
}

// Span starts a root span. Duration lands in the histogram
// "span.<path>" on End, plus the installed SpanSink, if any.
func (r *Registry) Span(path string) *Span {
	if r == nil {
		return nil
	}
	return &Span{r: r, path: path, start: time.Now()}
}

// Child starts a sub-span whose path extends the parent's
// ("parent/name"). Nil-safe.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{r: s.r, path: s.path + "/" + name, start: time.Now()}
}

// End completes the span: its duration is recorded in the registry
// histogram "span.<path>" and forwarded to the span sink. Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	s.r.Histogram("span." + s.path).Observe(int64(d))
	if sink := s.r.spanSink(); sink != nil {
		sink.SpanEnd(s.path, s.start, d)
	}
}
