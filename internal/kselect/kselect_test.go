package kselect

import (
	"testing"
)

func TestGoodKFindsKnee(t *testing.T) {
	// Rapid gains for four steps, then a flat tail.
	curve := []float64{1.10, 1.15, 1.19, 1.22, 1.221, 1.2215, 1.2216, 1.2217, 1.2217}
	k, settled, err := GoodK(curve, 1.0, 1.25, Params{Frac: 0.01, Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !settled {
		t.Fatal("curve clearly settles")
	}
	if k != 4 {
		t.Fatalf("knee at k=%d, want 4", k)
	}
}

func TestGoodKNeverSettles(t *testing.T) {
	curve := []float64{1.0, 1.1, 1.2, 1.3, 1.4}
	k, settled, err := GoodK(curve, 1.0, 2.0, Params{Frac: 0.01, Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	if settled {
		t.Fatal("steadily improving curve must not settle")
	}
	if k != len(curve) {
		t.Fatalf("unsettled curve must return its full length, got %d", k)
	}
}

func TestGoodKDecreasingCurve(t *testing.T) {
	// Elimination-style: falling then flat.
	curve := []float64{1.20, 1.15, 1.12, 1.119, 1.1185, 1.1185, 1.1184}
	k, settled, err := GoodK(curve, 1.0, 1.25, Params{Frac: 0.02, Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !settled || k != 3 {
		t.Fatalf("k=%d settled=%v, want 3/true", k, settled)
	}
}

func TestGoodKDegenerateSpan(t *testing.T) {
	k, settled, err := GoodK([]float64{1, 1, 1}, 2, 2, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 || !settled {
		t.Fatalf("no-crosstalk case must return k=1: %d %v", k, settled)
	}
}

func TestGoodKEmptyCurve(t *testing.T) {
	if _, _, err := GoodK(nil, 0, 1, Params{}); err == nil {
		t.Fatal("empty curve must error")
	}
}

func TestGoodKWindowLongerThanTail(t *testing.T) {
	// The flat tail is shorter than the window: cannot confirm settling.
	curve := []float64{1.0, 1.2, 1.201}
	k, settled, err := GoodK(curve, 1.0, 1.5, Params{Frac: 0.01, Window: 5})
	if err != nil {
		t.Fatal(err)
	}
	if settled {
		t.Fatal("window longer than tail cannot settle")
	}
	if k != len(curve) {
		t.Fatalf("k = %d", k)
	}
}

func TestKnee(t *testing.T) {
	curve := []float64{1.1, 1.2, 1.201, 1.2011, 1.2012, 1.2012}
	k, atK, settled, err := Knee(curve, 1.0, 1.25, Params{Frac: 0.05, Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !settled || k != 2 || atK != 1.2 {
		t.Fatalf("Knee = (%d, %g, %v)", k, atK, settled)
	}
	if _, _, _, err := Knee(nil, 0, 1, Params{}); err == nil {
		t.Fatal("empty curve must error")
	}
}

func TestParamsDefaults(t *testing.T) {
	var p Params
	if p.frac() != DefaultFrac || p.window() != DefaultWindow {
		t.Fatal("zero params must select defaults")
	}
	p = Params{Frac: 0.1, Window: 7}
	if p.frac() != 0.1 || p.window() != 7 {
		t.Fatal("explicit params must pass through")
	}
}
