package httpapi

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"topkagg/internal/circuit"
	"topkagg/internal/core"
	"topkagg/internal/gen"
	"topkagg/internal/netlist"
	"topkagg/internal/noise"
	"topkagg/internal/serve"
	"topkagg/internal/spef"
	"topkagg/internal/verilog"
)

// newTestServer boots a Server behind httptest with cleanup wired.
func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(NewServer(cfg))
	t.Cleanup(ts.Close)
	return ts
}

// testCircuit builds a deterministic small circuit for one seed.
func testCircuit(t *testing.T, seed int64) *circuit.Circuit {
	t.Helper()
	c, err := gen.Build(gen.Spec{Name: fmt.Sprintf("e2e%d", seed), Gates: 24, Couplings: 20, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// uploadNetlist registers c under name as a raw netlist body.
func uploadNetlist(t *testing.T, ts *httptest.Server, name string, c *circuit.Circuit) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/models/"+name, strings.NewReader(netlist.String(c)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload %s: status %d: %s", name, resp.StatusCode, body)
	}
}

// post sends a JSON body and returns the status and response bytes.
func post(t *testing.T, ts *httptest.Server, path string, body any) (int, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// wireBytes is the equivalence contract's right-hand side: the bytes
// the server must produce for resp, computed by the same pure
// conversion the handler uses.
func wireBytes(t *testing.T, c *circuit.Circuit, resp serve.Response) []byte {
	t.Helper()
	wr, err := ToWire(c, resp)
	if err != nil {
		t.Fatalf("ToWire: %v", err)
	}
	data, err := marshalJSON(wr)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// e2eQueries builds the mixed workload the differential suites use:
// every Op at the circuit target and per-net targets, plus what-ifs.
func e2eQueries(c *circuit.Circuit) []QueryRequest {
	var nets []string
	for id := 0; id < c.NumNets() && len(nets) < 3; id++ {
		if c.Net(circuit.NetID(id)).Driver >= 0 {
			nets = append(nets, c.Net(circuit.NetID(id)).Name)
		}
	}
	qrs := []QueryRequest{
		{Op: "addition", K: 3},
		{Op: "elimination", K: 2},
		{Op: "whatif", Fix: []int{0, 1}},
		{Op: "whatif"},
	}
	for _, n := range nets {
		qrs = append(qrs,
			QueryRequest{Op: "addition", Net: n, K: 2},
			QueryRequest{Op: "elimination", Net: n, K: 2},
			QueryRequest{Op: "whatif", Net: n, Fix: []int{1}},
		)
	}
	qrs = append(qrs, qrs[0], qrs[1]) // duplicates exercise warm caches
	return qrs
}

// toServeQuery mirrors validity.go's conversion for the reference
// analyzer (limits left zero: the test server configures none).
func toServeQuery(t *testing.T, c *circuit.Circuit, qr QueryRequest) serve.Query {
	t.Helper()
	q, aerr := validateQuery(c, &qr, limitPolicy{}, true)
	if aerr != nil {
		t.Fatalf("reference conversion of %+v: %v", qr, aerr)
	}
	return q
}

// TestWireMatchesInProcess is the end-to-end differential suite: for
// seeded random circuits, every Op served through httptest returns
// bytes identical to ToWire over a direct in-process Analyzer.Do call
// — the single-query endpoint, the batch endpoint at workers 1 and 8,
// and the NDJSON sweep at workers 1 and 8 all hold the same contract.
func TestWireMatchesInProcess(t *testing.T) {
	seeds := []int64{3, 11}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		c := testCircuit(t, seed)
		ts := newTestServer(t, Config{})
		name := fmt.Sprintf("m%d", seed)
		uploadNetlist(t, ts, name, c)

		ref := serve.NewAnalyzer(noise.NewModel(c), core.Options{})
		qrs := e2eQueries(c)
		refBytes := make([][]byte, len(qrs))
		for i, qr := range qrs {
			refBytes[i] = wireBytes(t, c, ref.Do(toServeQuery(t, c, qr)))
		}

		// Single-query endpoint.
		for i, qr := range qrs {
			status, body := post(t, ts, "/v1/models/"+name+"/query", qr)
			if status != http.StatusOK {
				t.Fatalf("seed %d query %d: status %d: %s", seed, i, status, body)
			}
			if !bytes.Equal(body, refBytes[i]) {
				t.Errorf("seed %d query %d (%s): wire response differs from in-process\n got: %s\nwant: %s",
					seed, i, qrs[i].Op, body, refBytes[i])
			}
		}

		// Batch endpoint, both worker counts, against the same refs.
		for _, workers := range []int{1, 8} {
			status, body := post(t, ts, "/v1/models/"+name+"/batch",
				BatchRequest{Queries: qrs, Workers: workers})
			if status != http.StatusOK {
				t.Fatalf("seed %d batch w=%d: status %d: %s", seed, workers, status, body)
			}
			var br BatchResponse
			if err := json.Unmarshal(body, &br); err != nil {
				t.Fatalf("seed %d batch w=%d: %v", seed, workers, err)
			}
			if len(br.Responses) != len(qrs) {
				t.Fatalf("seed %d batch w=%d: %d responses for %d queries", seed, workers, len(br.Responses), len(qrs))
			}
			for i, wr := range br.Responses {
				got, err := marshalJSON(wr)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, refBytes[i]) {
					t.Errorf("seed %d batch w=%d query %d: differs from in-process\n got: %s\nwant: %s",
						seed, workers, i, got, refBytes[i])
				}
			}
		}

		// Sweep endpoint: NDJSON records in request order, both worker
		// counts byte-identical to serially-computed references.
		var sweepNets []string
		for id := 0; id < c.NumNets() && len(sweepNets) < 3; id++ {
			if c.Net(circuit.NetID(id)).Driver >= 0 {
				sweepNets = append(sweepNets, c.Net(circuit.NetID(id)).Name)
			}
		}
		sweepNets = append([]string{""}, sweepNets...)
		for _, workers := range []int{1, 8} {
			sreq := SweepRequest{Op: "elimination", Nets: sweepNets, K: 2, Workers: workers}
			status, body := post(t, ts, "/v1/models/"+name+"/sweep", sreq)
			if status != http.StatusOK {
				t.Fatalf("seed %d sweep w=%d: status %d: %s", seed, workers, status, body)
			}
			lines := splitNDJSON(t, body)
			if len(lines) != len(sweepNets) {
				t.Fatalf("seed %d sweep w=%d: %d records for %d nets", seed, workers, len(lines), len(sweepNets))
			}
			queries, aerr := validateSweep(c, &sreq, limitPolicy{})
			if aerr != nil {
				t.Fatal(aerr)
			}
			for i, q := range queries {
				wr, err := ToWire(c, ref.Do(q))
				if err != nil {
					t.Fatal(err)
				}
				want, err := marshalJSON(SweepRecord{Index: i, QueryResponse: wr})
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(append(lines[i], '\n'), want) {
					t.Errorf("seed %d sweep w=%d record %d: differs from in-process\n got: %s\nwant: %s",
						seed, workers, i, lines[i], want)
				}
			}
		}
	}
}

// splitNDJSON splits a response body into its non-empty lines.
func splitNDJSON(t *testing.T, body []byte) [][]byte {
	t.Helper()
	var lines [][]byte
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := append([]byte(nil), sc.Bytes()...)
		if len(bytes.TrimSpace(line)) > 0 {
			lines = append(lines, line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// errCode extracts the structured error code of a 4xx/5xx body.
func errCode(t *testing.T, body []byte) string {
	t.Helper()
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("error body is not structured JSON: %v (%s)", err, body)
	}
	return eb.Error.Code
}

// TestMalformedRequests pins the 4xx surface: every malformed input
// maps to the right status and a stable machine-readable error code,
// and the body is always well-formed JSON.
func TestMalformedRequests(t *testing.T) {
	c := testCircuit(t, 5)
	ts := newTestServer(t, Config{MaxBodyBytes: 4096})
	uploadNetlist(t, ts, "m", c)

	rawPost := func(path, contentType, body string) (int, []byte) {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+path, contentType, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, out
	}

	cases := []struct {
		name       string
		path       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"bad json", "/v1/models/m/query", "{not json", http.StatusBadRequest, codeBadJSON},
		{"trailing garbage", "/v1/models/m/query", `{"op":"addition","k":1} extra`, http.StatusBadRequest, codeBadJSON},
		{"unknown field", "/v1/models/m/query", `{"op":"addition","k":1,"bogus":true}`, http.StatusBadRequest, codeBadJSON},
		{"unknown op", "/v1/models/m/query", `{"op":"subtract","k":1}`, http.StatusBadRequest, codeUnknownOp},
		{"k zero", "/v1/models/m/query", `{"op":"addition","k":0}`, http.StatusBadRequest, codeBadK},
		{"k negative", "/v1/models/m/query", `{"op":"elimination","k":-2}`, http.StatusBadRequest, codeBadK},
		{"k on whatif", "/v1/models/m/query", `{"op":"whatif","k":3}`, http.StatusBadRequest, codeBadK},
		{"unknown net", "/v1/models/m/query", `{"op":"addition","net":"nope","k":1}`, http.StatusBadRequest, codeUnknownNet},
		{"fix out of range", "/v1/models/m/query", `{"op":"whatif","fix":[99999]}`, http.StatusBadRequest, codeUnknownCoupling},
		{"fix on addition", "/v1/models/m/query", `{"op":"addition","k":1,"fix":[0]}`, http.StatusBadRequest, codeBadRequest},
		{"negative timeout", "/v1/models/m/query", `{"op":"addition","k":1,"timeoutMs":-5}`, http.StatusBadRequest, codeBadLimits},
		{"unknown model", "/v1/models/ghost/query", `{"op":"addition","k":1}`, http.StatusNotFound, codeUnknownModel},
		{"oversized body", "/v1/models/m/query", `{"op":"addition","k":1,"net":"` + strings.Repeat("x", 5000) + `"}`, http.StatusRequestEntityTooLarge, codeBodyTooLarge},
		{"empty batch", "/v1/models/m/batch", `{"queries":[]}`, http.StatusBadRequest, codeBadRequest},
		{"bad query in batch", "/v1/models/m/batch", `{"queries":[{"op":"addition","k":1},{"op":"addition","k":0}]}`, http.StatusBadRequest, codeBadK},
		{"exact inside batch", "/v1/models/m/batch", `{"queries":[{"op":"addition","k":1,"exact":true}]}`, http.StatusBadRequest, codeBadRequest},
		{"sweep whatif", "/v1/models/m/sweep", `{"op":"whatif","k":1}`, http.StatusBadRequest, codeUnknownOp},
		{"sweep k zero", "/v1/models/m/sweep", `{"op":"addition","k":0}`, http.StatusBadRequest, codeBadK},
		{"upload two sources", "/v1/models/n2", `{"netlist":"x","verilog":"y"}`, http.StatusBadRequest, codeBadUpload},
		{"upload invalid netlist", "/v1/models/n3", `{"netlist":"gibberish"}`, http.StatusBadRequest, codeBadUpload},
	}
	for _, tc := range cases {
		contentType := "application/json"
		status, body := rawPost(tc.path, contentType, tc.body)
		if status != tc.wantStatus {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, status, tc.wantStatus, body)
			continue
		}
		if code := errCode(t, body); code != tc.wantCode {
			t.Errorf("%s: error code %q, want %q", tc.name, code, tc.wantCode)
		}
	}

	// Bad model name on upload (invalid character).
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/models/bad%20name", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || errCode(t, body) != codeBadModelName {
		t.Errorf("bad model name: status %d code %s", resp.StatusCode, body)
	}

	// Wrong method routes to 405 without reaching any handler.
	getResp, err := ts.Client().Get(ts.URL + "/v1/models/m/query")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET on query endpoint: status %d, want 405", getResp.StatusCode)
	}
}

// TestModelLifecycle covers upload/list/info/delete round trips plus
// verilog+spef upload and the replaced flag.
func TestModelLifecycle(t *testing.T) {
	c := testCircuit(t, 9)
	ts := newTestServer(t, Config{})
	uploadNetlist(t, ts, "a", c)
	uploadNetlist(t, ts, "b", c)

	// Replace keeps serving and reports replaced.
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/models/a", strings.NewReader(netlist.String(c)))
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var ur uploadResult
	if err := json.NewDecoder(resp.Body).Decode(&ur); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !ur.Replaced || ur.Model.Name != "a" || ur.Model.Couplings != c.NumCouplings() {
		t.Errorf("replace upload: %+v", ur)
	}

	// List is sorted by name.
	lresp, err := ts.Client().Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Models []ModelInfo `json:"models"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if len(list.Models) != 2 || list.Models[0].Name != "a" || list.Models[1].Name != "b" {
		t.Errorf("list: %+v", list.Models)
	}

	// Info and delete.
	iresp, err := ts.Client().Get(ts.URL + "/v1/models/b")
	if err != nil {
		t.Fatal(err)
	}
	iresp.Body.Close()
	if iresp.StatusCode != http.StatusOK {
		t.Errorf("info: status %d", iresp.StatusCode)
	}
	dreq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/models/b", nil)
	dresp, err := ts.Client().Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Errorf("delete: status %d", dresp.StatusCode)
	}
	gresp, err := ts.Client().Get(ts.URL + "/v1/models/b")
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusNotFound {
		t.Errorf("info after delete: status %d, want 404", gresp.StatusCode)
	}

	// Verilog + SPEF upload via JSON, then a query against it.
	status, body := post(t, ts, "/v1/models/v", UploadRequest{Verilog: verilog.String(c), SPEF: spef.String(c)})
	if status != http.StatusOK {
		t.Fatalf("verilog upload: status %d: %s", status, body)
	}
	status, body = post(t, ts, "/v1/models/v/query", QueryRequest{Op: "addition", K: 1})
	if status != http.StatusOK {
		t.Fatalf("query on verilog model: status %d: %s", status, body)
	}
}
