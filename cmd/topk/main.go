// Command topk runs top-k aggressor analysis on a circuit: either the
// addition set (which k couplings would add the most delay to
// noiseless timing) or the elimination set (which k couplings to fix
// for the largest delay recovery).
//
// Circuits load from the native netlist format, from gate-level
// Verilog plus SPEF parasitics, or from the built-in benchmark
// generator:
//
//	topk -netlist design.ckt -k 10 -mode elim
//	topk -verilog design.v -spef design.spef -k 10 -mode elim
//	topk -bench i2 -k 20 -mode add -curve -report
//
// A batch of queries runs against one shared analyzer (the noise
// fixpoint and per-target engine state are computed once and reused),
// optionally across a worker pool:
//
//	topk -bench i2 -batch queries.json -workers 4 -stats
//
// where queries.json is an array like
//
//	[{"op": "add", "k": 5},
//	 {"op": "elim", "net": "n42", "k": 3},
//	 {"op": "whatif", "fix": [1, 2, 7]}]
//
// An empty "net" targets the circuit outputs; a missing "k" takes the
// -k flag's value.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"topkagg"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// Exit codes. Timeout and degraded are distinct so scripts can tell "no
// answer in time" (retry with a larger budget) from "best-effort answer
// printed" (usable, but not the full curve).
const (
	exitOK       = 0
	exitErr      = 1
	exitUsage    = 2
	exitTimeout  = 3 // the time/work budget expired before any usable result
	exitDegraded = 4 // a partial or degraded result was printed
)

// config carries the parsed flag values; run logic lives on methods so
// tests can drive the command without a process boundary.
type config struct {
	netlist, verilog, spef, bench, lib string
	k                                  int
	mode                               string
	exact                              bool
	exactPrune                         bool
	exactWaveforms                     bool
	curve, report, prefilter           bool
	plot, net                          string
	asJSON                             bool
	stats                              bool
	workers                            int
	fixWorkers                         int
	batch                              string
	metrics                            bool
	debugAddr                          string
	timeout                            time.Duration
	budget                             int64

	stderr io.Writer // degraded-result warnings
}

// run is the whole command: parse args, execute, report. It returns
// the process exit code and writes only to the given streams.
func run(args []string, stdout, stderr io.Writer) int {
	var cfg config
	fs := flag.NewFlagSet("topk", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&cfg.netlist, "netlist", "", "circuit netlist file (native format)")
	fs.StringVar(&cfg.verilog, "verilog", "", "gate-level Verilog netlist file")
	fs.StringVar(&cfg.spef, "spef", "", "SPEF parasitics file (with -verilog)")
	fs.StringVar(&cfg.bench, "bench", "", "paper benchmark name instead of a file")
	fs.StringVar(&cfg.lib, "lib", "", "Liberty (.lib) cell library (default: built-in synthetic library)")
	fs.IntVar(&cfg.k, "k", 10, "set cardinality")
	fs.StringVar(&cfg.mode, "mode", "add", "add (addition set) or elim (elimination set)")
	fs.BoolVar(&cfg.exact, "exact", false, "disable all pruning caps (small circuits only)")
	fs.BoolVar(&cfg.exactPrune, "exact-prune", false, "disable the envelope-digest prune prefilter (results are identical; debugging/benchmark escape hatch)")
	fs.BoolVar(&cfg.exactWaveforms, "exact-waveforms", false, "disable the flat-grid waveform screen in the noise fixpoint (results are identical; debugging/benchmark escape hatch)")
	fs.BoolVar(&cfg.curve, "curve", false, "print the full per-cardinality delay curve")
	fs.BoolVar(&cfg.report, "report", false, "print the noisy critical-path report")
	fs.BoolVar(&cfg.prefilter, "filter", false, "report false-aggressor classification before the analysis")
	fs.StringVar(&cfg.plot, "plot", "", "net name: plot its transition, noise envelope and noisy waveform")
	fs.StringVar(&cfg.net, "net", "", "net name: analyze this net's arrival instead of the circuit outputs")
	fs.BoolVar(&cfg.asJSON, "json", false, "emit the result as JSON (for scripting)")
	fs.BoolVar(&cfg.stats, "stats", false, "print engine instrumentation (per-cardinality counters, cache activity)")
	fs.IntVar(&cfg.workers, "workers", 0, "worker goroutines for -batch (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.fixWorkers, "fixpoint-workers", 0, "worker goroutines inside each noise-fixpoint sweep (0 = GOMAXPROCS)")
	fs.StringVar(&cfg.batch, "batch", "", "JSON batch-query file; all queries share one analyzer")
	fs.BoolVar(&cfg.metrics, "metrics", false, "print the engine metrics summary table after the run")
	fs.StringVar(&cfg.debugAddr, "debug-addr", "", "serve /debug/metrics, /debug/vars and /debug/pprof on this address during the run (e.g. localhost:6060)")
	fs.DurationVar(&cfg.timeout, "timeout", 0, "per-query wall-clock limit; a run stopped mid-enumeration prints its best-effort prefix (0 = none)")
	fs.Int64Var(&cfg.budget, "budget", 0, "per-query work allowance in candidate evaluations (0 = unlimited)")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	cfg.stderr = stderr
	code, err := cfg.execute(stdout)
	if err != nil {
		fmt.Fprintln(stderr, "topk:", err)
	}
	return code
}

func (cfg *config) execute(w io.Writer) (int, error) {
	if cfg.workers < 0 {
		return exitErr, fmt.Errorf("-workers must be >= 0, got %d", cfg.workers)
	}
	if cfg.fixWorkers < 0 {
		return exitErr, fmt.Errorf("-fixpoint-workers must be >= 0, got %d", cfg.fixWorkers)
	}
	if cfg.timeout < 0 {
		return exitErr, fmt.Errorf("-timeout must be >= 0, got %v", cfg.timeout)
	}
	if cfg.budget < 0 {
		return exitErr, fmt.Errorf("-budget must be >= 0, got %d", cfg.budget)
	}
	lib, err := loadLibrary(cfg.lib)
	if err != nil {
		return exitErr, err
	}
	c, err := loadCircuit(lib, cfg.netlist, cfg.verilog, cfg.spef, cfg.bench)
	if err != nil {
		return exitErr, err
	}
	m := topkagg.NewModel(c)
	if cfg.fixWorkers > 0 {
		m = m.WithWorkers(cfg.fixWorkers)
	}
	if cfg.exactWaveforms {
		m = m.WithExactWaveforms(true)
	}
	var reg *topkagg.Metrics
	if cfg.metrics || cfg.debugAddr != "" {
		reg = topkagg.NewMetrics()
		m = m.WithObs(reg)
	}
	if cfg.debugAddr != "" {
		d, err := topkagg.ServeDebug(reg, cfg.debugAddr)
		if err != nil {
			return exitErr, err
		}
		defer d.Close()
		fmt.Fprintf(w, "debug endpoint on http://%s/ (metrics, expvar, pprof)\n", d.Addr())
	}
	opt := topkagg.Options{}
	if cfg.exact {
		opt = topkagg.ExactOptions()
	}
	opt.ExactPrune = cfg.exactPrune

	if cfg.prefilter {
		fr, err := topkagg.FalseAggressors(m, topkagg.FilterOptions{})
		if err != nil {
			return exitErr, err
		}
		fmt.Fprintf(w, "false-aggressor filter: %d of %d couplings removable; false directions: %d early, %d late, %d unobservable, %d sub-threshold\n\n",
			len(fr.False), c.NumCouplings(),
			fr.EarlyFiltered, fr.LateFiltered, fr.UnobservableFiltered, fr.MagnitudeFiltered)
	}

	var code int
	var runErr error
	if cfg.batch != "" {
		code, runErr = cfg.runBatch(w, c, m, opt)
	} else {
		code, runErr = cfg.runSingle(w, c, m, opt)
	}
	// The metrics table prints even after a partially failed batch:
	// what the engines did up to the failure is exactly what the flag
	// asks to see.
	if cfg.metrics {
		fmt.Fprintln(w, "\nengine metrics:")
		if err := reg.Snapshot().WriteTable(w); err != nil && runErr == nil {
			code, runErr = exitErr, err
		}
	}
	return code, runErr
}

// limits builds the per-query execution limits from the flags.
func (cfg *config) limits() topkagg.QueryLimits {
	return topkagg.QueryLimits{Timeout: cfg.timeout, MaxWork: cfg.budget}
}

// limited reports whether any execution limit is in force.
func (cfg *config) limited() bool { return cfg.timeout > 0 || cfg.budget > 0 }

// classify maps an error to its exit code: a budget-stopped run that
// produced nothing is a timeout, everything else is a hard error.
func classify(err error) int {
	switch topkagg.StopReason(err) {
	case "deadline", "canceled", "work-budget":
		return exitTimeout
	default:
		return exitErr
	}
}

// runSingle is the original one-query mode.
func (cfg *config) runSingle(w io.Writer, c *topkagg.Circuit, m *topkagg.Model, opt topkagg.Options) (int, error) {
	var target topkagg.NetID = topkagg.WholeCircuit
	if cfg.net != "" {
		id, ok := c.NetByName(cfg.net)
		if !ok {
			return exitErr, fmt.Errorf("no net %q", cfg.net)
		}
		target = id
	}
	var op topkagg.QueryOp
	switch cfg.mode {
	case "add":
		op = topkagg.OpAddition
	case "elim":
		op = topkagg.OpElimination
	default:
		return exitErr, fmt.Errorf("unknown -mode %q (want add or elim)", cfg.mode)
	}
	var res *topkagg.Result
	var err error
	code := exitOK
	if cfg.limited() {
		// Route through the analyzer so the limits apply and a stopped
		// run degrades to its best-effort prefix instead of failing.
		a := topkagg.NewAnalyzer(m, opt)
		resp := a.DoCtx(context.Background(), topkagg.Query{Op: op, Net: target, K: cfg.k, Limits: cfg.limits()})
		if resp.Err != nil {
			return classify(resp.Err), resp.Err
		}
		res = resp.Result
		if resp.Degraded != "" {
			fmt.Fprintf(cfg.stderr, "topk: degraded result (%s): %d of %d cardinalities completed\n",
				resp.Degraded, len(res.PerK), cfg.k)
			code = exitDegraded
		}
	} else {
		switch {
		case op == topkagg.OpAddition && target >= 0:
			res, err = topkagg.TopKAdditionAt(m, target, cfg.k, opt)
		case op == topkagg.OpAddition:
			res, err = topkagg.TopKAddition(m, cfg.k, opt)
		case target >= 0:
			res, err = topkagg.TopKEliminationAt(m, target, cfg.k, opt)
		default:
			res, err = topkagg.TopKElimination(m, cfg.k, opt)
		}
		if err != nil {
			return exitErr, err
		}
	}

	if cfg.asJSON {
		if err := emitJSON(w, c, cfg.mode, res); err != nil {
			return exitErr, err
		}
		return code, nil
	}
	fmt.Fprintf(w, "circuit %s: %d gates, %d couplings, %d victim nets analyzed\n",
		c.Name, c.NumGates(), c.NumCouplings(), res.Victims)
	scope := "circuit"
	if cfg.net != "" {
		scope = "net " + cfg.net
	}
	fmt.Fprintf(w, "%s: noiseless arrival %.4f ns, all-aggressor arrival %.4f ns\n", scope, res.BaseDelay, res.AllDelay)
	fmt.Fprintf(w, "enumeration time %s\n", res.Elapsed)
	if len(res.PerK) == 0 {
		if res.Partial {
			fmt.Fprintln(w, "no cardinality completed within the budget")
			return exitTimeout, nil
		}
		fmt.Fprintln(w, "no aggressor sets found (no couplings affect the analyzed paths)")
		return code, nil
	}
	if cfg.curve {
		fmt.Fprintln(w, "\nk  delay(ns)  set")
		for i, s := range res.PerK {
			fmt.Fprintf(w, "%-2d %.4f", i+1, s.Delay)
			fmt.Fprintf(w, "  %v\n", s.IDs)
		}
	}
	top := res.Top()
	fmt.Fprintf(w, "\ntop-%d %s set (delay %.4f ns):\n", len(top.IDs), cfg.mode, top.Delay)
	for _, id := range top.IDs {
		fmt.Fprintf(w, "  %s\n", topkagg.CouplingString(c, id))
	}
	if cfg.stats {
		printStats(w, res.Stats)
	}

	if cfg.report || cfg.plot != "" {
		an, err := m.Run(nil)
		if err != nil {
			return exitErr, err
		}
		if cfg.report {
			fmt.Fprintln(w)
			fmt.Fprint(w, topkagg.CriticalReport(an))
		}
		if cfg.plot != "" {
			id, ok := c.NetByName(cfg.plot)
			if !ok {
				return exitErr, fmt.Errorf("no net %q", cfg.plot)
			}
			fmt.Fprintln(w)
			fmt.Fprint(w, topkagg.NoisePlot(an, m, id))
		}
	}
	return code, nil
}

// batchQuery is one entry of the -batch JSON file.
type batchQuery struct {
	// Op is "add"/"addition", "elim"/"elimination" or "whatif".
	Op string `json:"op"`
	// Net names the target net; empty targets the circuit outputs.
	Net string `json:"net,omitempty"`
	// K is the cardinality for top-k ops; 0 takes the -k flag value.
	K int `json:"k,omitempty"`
	// Fix lists coupling IDs a whatif scenario deactivates.
	Fix []int `json:"fix,omitempty"`
}

// runBatch loads the batch file, answers every query over one shared
// analyzer and prints aligned per-query results. Per-query failures
// are reported inline; the command fails if any query failed, and
// degrades its exit code when any query returned a best-effort result.
func (cfg *config) runBatch(w io.Writer, c *topkagg.Circuit, m *topkagg.Model, opt topkagg.Options) (int, error) {
	data, err := os.ReadFile(cfg.batch)
	if err != nil {
		return exitErr, err
	}
	var specs []batchQuery
	if err := json.Unmarshal(data, &specs); err != nil {
		return exitErr, fmt.Errorf("%s: %w", cfg.batch, err)
	}
	if len(specs) == 0 {
		return exitErr, fmt.Errorf("%s: batch contains no queries", cfg.batch)
	}
	queries := make([]topkagg.Query, len(specs))
	for i, s := range specs {
		q := topkagg.Query{Net: topkagg.WholeCircuit, K: s.K, Limits: cfg.limits()}
		switch s.Op {
		case "add", "addition":
			q.Op = topkagg.OpAddition
		case "elim", "elimination":
			q.Op = topkagg.OpElimination
		case "whatif":
			q.Op = topkagg.OpWhatIf
		default:
			return exitErr, fmt.Errorf("%s: query %d: unknown op %q (want add, elim or whatif)", cfg.batch, i, s.Op)
		}
		if s.Net != "" {
			id, ok := c.NetByName(s.Net)
			if !ok {
				return exitErr, fmt.Errorf("%s: query %d: no net %q", cfg.batch, i, s.Net)
			}
			q.Net = id
		}
		if q.K == 0 {
			q.K = cfg.k
		}
		for _, id := range s.Fix {
			q.Fix = append(q.Fix, topkagg.CouplingID(id))
		}
		queries[i] = q
	}

	a := topkagg.NewAnalyzer(m, opt)
	start := time.Now()
	resps := a.RunBatch(queries, cfg.workers)
	elapsed := time.Since(start)

	failed, timedOut, degraded := 0, 0, 0
	for i, r := range resps {
		switch {
		case r.Err != nil:
			failed++
			if classify(r.Err) == exitTimeout {
				timedOut++
			}
		case r.Degraded != "":
			degraded++
			fmt.Fprintf(cfg.stderr, "topk: query %d degraded (%s)\n", i, r.Degraded)
		}
	}
	code := exitOK
	switch {
	case failed > 0 && failed == timedOut && degraded == 0:
		code = exitTimeout
	case failed > 0:
		code = exitErr
	case degraded > 0:
		code = exitDegraded
	}

	if cfg.asJSON {
		if err := emitBatchJSON(w, c, specs, resps); err != nil {
			return exitErr, err
		}
		return code, nil
	}
	fmt.Fprintf(w, "circuit %s: %d gates, %d couplings\n", c.Name, c.NumGates(), c.NumCouplings())
	fmt.Fprintf(w, "batch: %d queries in %s (workers=%d)\n\n", len(resps), elapsed.Round(time.Microsecond), cfg.workers)
	for i, r := range resps {
		fmt.Fprintf(w, "[%d] %s %s", i, r.Query.Op, describeTarget(c, r.Query.Net))
		switch {
		case r.Err != nil:
			fmt.Fprintf(w, ": error: %v\n", r.Err)
		case r.Query.Op == topkagg.OpWhatIf:
			fmt.Fprintf(w, " fix=%v: delay %.4f ns\n", r.Query.Fix, r.Delay)
		default:
			top := r.Result.Top()
			fmt.Fprintf(w, " k=%d: delay %.4f ns, set %v", r.Query.K, top.Delay, top.IDs)
			if r.Partial {
				fmt.Fprintf(w, " (partial: %d of %d cardinalities)", len(r.Result.PerK), r.Query.K)
			}
			fmt.Fprintln(w)
			if cfg.stats {
				printStats(w, r.Result.Stats)
			}
		}
	}
	if cfg.stats {
		st := a.Stats()
		fmt.Fprintf(w, "\nanalyzer: %d queries, %d fixpoint run(s), prepared-state cache %d hit(s) / %d miss(es)\n",
			st.Queries, st.FixpointRuns, st.PrepHits, st.PrepMisses)
	}
	if failed > 0 {
		return code, fmt.Errorf("%d of %d batch queries failed", failed, len(resps))
	}
	return code, nil
}

func describeTarget(c *topkagg.Circuit, net topkagg.NetID) string {
	if net == topkagg.WholeCircuit {
		return "circuit"
	}
	return "net " + c.Net(net).Name
}

// printStats renders one run's engine instrumentation.
func printStats(w io.Writer, st *topkagg.EngineStats) {
	if st == nil {
		return
	}
	fmt.Fprintln(w, "  k   cands  dups  prune-dom  prune-beam  dig-hit  dig-fb  lists  max-width  verified  time")
	for _, ks := range st.PerK {
		fmt.Fprintf(w, "  %-3d %-6d %-5d %-10d %-11d %-8d %-7d %-6d %-10d %-9d %s\n",
			ks.K, ks.Candidates, ks.Duplicates, ks.PrunedDominance, ks.PrunedBeam,
			ks.DigestHits, ks.DigestFallbacks,
			ks.Lists, ks.MaxIListWidth, ks.Verified, ks.Elapsed.Round(time.Microsecond))
	}
	if st.RescoreRuns > 0 {
		fmt.Fprintf(w, "  rescore: %d reference run(s) in %s\n", st.RescoreRuns, st.RescoreElapsed.Round(time.Microsecond))
	}
	if st.CacheHits+st.CacheMisses > 0 {
		fmt.Fprintf(w, "  shared state: %d cache hit(s), %d miss(es)\n", st.CacheHits, st.CacheMisses)
	}
	if st.EnvCacheHits+st.EnvCacheMisses > 0 {
		fmt.Fprintf(w, "  envelope cache: %d hit(s), %d miss(es)\n", st.EnvCacheHits, st.EnvCacheMisses)
	}
}

// jsonResult is the machine-readable output shape of -json.
type jsonResult struct {
	Circuit   string     `json:"circuit"`
	Mode      string     `json:"mode"`
	Gates     int        `json:"gates"`
	Couplings int        `json:"couplings"`
	BaseDelay float64    `json:"baseDelayNs"`
	AllDelay  float64    `json:"allDelayNs"`
	ElapsedNs int64      `json:"enumerationNs"`
	PerK      []jsonPerK `json:"perK"`
}

type jsonPerK struct {
	K         int          `json:"k"`
	DelayNs   float64      `json:"delayNs"`
	Couplings []jsonCouple `json:"couplings"`
}

type jsonCouple struct {
	ID   int     `json:"id"`
	NetA string  `json:"netA"`
	NetB string  `json:"netB"`
	CcFF float64 `json:"ccFF"`
}

func emitJSON(w io.Writer, c *topkagg.Circuit, mode string, res *topkagg.Result) error {
	out := jsonResult{
		Circuit:   c.Name,
		Mode:      mode,
		Gates:     c.NumGates(),
		Couplings: c.NumCouplings(),
		BaseDelay: res.BaseDelay,
		AllDelay:  res.AllDelay,
		ElapsedNs: res.Elapsed.Nanoseconds(),
	}
	for i, s := range res.PerK {
		pk := jsonPerK{K: i + 1, DelayNs: s.Delay}
		for _, id := range s.IDs {
			cp := c.Coupling(id)
			pk.Couplings = append(pk.Couplings, jsonCouple{
				ID:   int(id),
				NetA: c.Net(cp.A).Name,
				NetB: c.Net(cp.B).Name,
				CcFF: cp.Cc,
			})
		}
		out.PerK = append(out.PerK, pk)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// jsonBatchResp is one element of -batch -json output, aligned with
// the input queries by position.
type jsonBatchResp struct {
	Op       string     `json:"op"`
	Net      string     `json:"net,omitempty"`
	K        int        `json:"k,omitempty"`
	Fix      []int      `json:"fix,omitempty"`
	Error    string     `json:"error,omitempty"`
	Partial  bool       `json:"partial,omitempty"`
	Degraded string     `json:"degraded,omitempty"`
	DelayNs  float64    `json:"delayNs,omitempty"`
	PerK     []jsonPerK `json:"perK,omitempty"`
}

func emitBatchJSON(w io.Writer, c *topkagg.Circuit, specs []batchQuery, resps []topkagg.Response) error {
	out := make([]jsonBatchResp, len(resps))
	for i, r := range resps {
		jr := jsonBatchResp{Op: specs[i].Op, Net: specs[i].Net, Fix: specs[i].Fix, Partial: r.Partial, Degraded: r.Degraded}
		switch {
		case r.Err != nil:
			jr.Error = r.Err.Error()
		case r.Query.Op == topkagg.OpWhatIf:
			jr.DelayNs = r.Delay
		default:
			jr.K = r.Query.K
			jr.DelayNs = r.Result.Top().Delay
			for j, s := range r.Result.PerK {
				jr.PerK = append(jr.PerK, jsonPerK{K: j + 1, DelayNs: s.Delay, Couplings: coupleJSON(c, s.IDs)})
			}
		}
		out[i] = jr
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func coupleJSON(c *topkagg.Circuit, ids []topkagg.CouplingID) []jsonCouple {
	var out []jsonCouple
	for _, id := range ids {
		cp := c.Coupling(id)
		out = append(out, jsonCouple{ID: int(id), NetA: c.Net(cp.A).Name, NetB: c.Net(cp.B).Name, CcFF: cp.Cc})
	}
	return out
}

func loadLibrary(path string) (*topkagg.Library, error) {
	if path == "" {
		return topkagg.DefaultLibrary(), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return topkagg.ParseLiberty(f)
}

func loadCircuit(lib *topkagg.Library, path, vpath, spath, bench string) (*topkagg.Circuit, error) {
	sources := 0
	for _, s := range []string{path, vpath, bench} {
		if s != "" {
			sources++
		}
	}
	if sources != 1 {
		return nil, fmt.Errorf("exactly one of -netlist, -verilog or -bench is required")
	}
	switch {
	case path != "":
		if spath != "" {
			return nil, fmt.Errorf("-spef pairs with -verilog, not -netlist")
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return topkagg.ParseNetlistWith(f, lib)
	case vpath != "":
		f, err := os.Open(vpath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		c, err := topkagg.ParseVerilogWith(f, lib)
		if err != nil {
			return nil, err
		}
		if spath != "" {
			sf, err := os.Open(spath)
			if err != nil {
				return nil, err
			}
			defer sf.Close()
			if err := topkagg.ApplySPEF(sf, c); err != nil {
				return nil, err
			}
		}
		return c, nil
	default:
		return topkagg.GenerateBenchmark(bench)
	}
}
