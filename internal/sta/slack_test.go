package sta

import (
	"math"
	"testing"
)

func TestRequiredTimesAndSlacks(t *testing.T) {
	c := parse(t, `circuit s
output y
gate g1 INV_X1 a -> n1
gate g2 INV_X1 n1 -> n2
gate g3 INV_X1 n2 -> y
gate h1 INV_X1 a -> z
`)
	r := analyze(t, c, Options{})
	slacks := r.Slacks(0)
	// Critical path nets have zero slack against the observed delay.
	for _, name := range []string{"a", "n1", "n2", "y"} {
		id, _ := c.NetByName(name)
		if math.Abs(slacks[id]) > 1e-9 {
			t.Errorf("critical net %s has slack %g, want 0", name, slacks[id])
		}
	}
	// z is an unconstrained sink (not marked as PO): infinite slack.
	z, _ := c.NetByName("z")
	if !math.IsInf(slacks[z], 1) {
		t.Errorf("unobserved net z has slack %g, want +Inf", slacks[z])
	}
}

func TestViolationsAgainstClock(t *testing.T) {
	c := parse(t, `circuit s
output y
gate g1 INV_X1 a -> n1
gate g2 INV_X1 n1 -> n2
gate g3 INV_X1 n2 -> y
`)
	r := analyze(t, c, Options{})
	delay := r.CircuitDelay()
	if v := r.Violations(delay + 0.1); len(v) != 0 {
		t.Fatalf("loose clock must have no violations, got %v", v)
	}
	viol := r.Violations(delay * 0.5)
	if len(viol) == 0 {
		t.Fatal("tight clock must produce violations")
	}
	// Worst violation first: the head of the list carries the minimum
	// slack (the whole zero-slack critical path ties; IDs break ties).
	slacks := r.Slacks(delay * 0.5)
	for _, v := range viol {
		if slacks[v] < slacks[viol[0]]-1e-12 {
			t.Fatalf("violations not worst-first: %s before %s", c.Net(viol[0]).Name, c.Net(v).Name)
		}
	}
	for i := 1; i < len(viol); i++ {
		if slacks[viol[i-1]] > slacks[viol[i]]+1e-12 {
			t.Fatal("violations must be sorted worst first")
		}
	}
}

func TestRequiredTimesExplicitClock(t *testing.T) {
	c := parse(t, `circuit s
output y
gate g1 INV_X1 a -> y
`)
	r := analyze(t, c, Options{})
	req := r.RequiredTimes(5.0)
	y, _ := c.NetByName("y")
	if req[y] != 5.0 {
		t.Fatalf("PO required time = %g, want 5", req[y])
	}
	a, _ := c.NetByName("a")
	if req[a] >= 5.0 || math.IsInf(req[a], 1) {
		t.Fatalf("input required time = %g, want finite < 5", req[a])
	}
}
