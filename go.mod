module topkagg

go 1.22
