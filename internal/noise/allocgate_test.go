package noise

import (
	"testing"

	"topkagg/internal/gen"
)

// TestFixpointAllocBudget is the allocation regression gate on the
// flat-grid kernel: a warm fixpoint run on the paper circuits must
// stay within a fixed allocation ceiling. The measured steady state
// is ~24 allocs/run on i1 and ~27 on i3 (engine pool bookkeeping and
// the result maps — the per-victim envelope math itself is
// allocation-free); the ceiling leaves slack for harmless runtime
// variation while still failing loudly if per-victim or per-iteration
// allocations ever creep back in (the pre-kernel engine spent 1218
// and 2573 allocs/run respectively).
func TestFixpointAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement is redundant in -short runs")
	}
	const ceiling = 64
	for _, name := range []string{"i1", "i3"} {
		c, err := gen.BuildPaper(name)
		if err != nil {
			t.Fatal(err)
		}
		m := NewModel(c)
		if _, err := m.Run(nil); err != nil { // warm the engine pool
			t.Fatal(err)
		}
		avg := testing.AllocsPerRun(5, func() {
			if _, err := m.Run(nil); err != nil {
				t.Error(err)
			}
		})
		if avg > ceiling {
			t.Errorf("%s: warm fixpoint run allocates %.0f objects, ceiling %d", name, avg, ceiling)
		}
	}
}
