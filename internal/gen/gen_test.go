package gen

import (
	"testing"

	"topkagg/internal/netlist"
	"topkagg/internal/noise"
	"topkagg/internal/sta"
)

func TestBuildMatchesSpec(t *testing.T) {
	spec := Spec{Name: "t", Gates: 80, Couplings: 150, Seed: 7}
	c, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 80 {
		t.Fatalf("gates = %d, want 80", c.NumGates())
	}
	if c.NumCouplings() != 150 {
		t.Fatalf("couplings = %d, want 150", c.NumCouplings())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(c.POs()) == 0 {
		t.Fatal("generated circuit must have outputs")
	}
}

func TestBuildDeterministic(t *testing.T) {
	spec := Spec{Name: "t", Gates: 60, Couplings: 90, Seed: 42}
	c1, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if netlist.String(c1) != netlist.String(c2) {
		t.Fatal("same spec+seed must generate identical circuits")
	}
	spec.Seed = 43
	c3, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if netlist.String(c1) == netlist.String(c3) {
		t.Fatal("different seeds should generate different circuits")
	}
}

func TestBuildRejectsBadSpecs(t *testing.T) {
	if _, err := Build(Spec{Gates: 1, Couplings: 0}); err == nil {
		t.Fatal("too few gates must error")
	}
	if _, err := Build(Spec{Gates: 10, Couplings: -1}); err == nil {
		t.Fatal("negative couplings must error")
	}
}

func TestPaperSpecs(t *testing.T) {
	specs := Paper()
	if len(specs) != 10 {
		t.Fatalf("want 10 paper benchmarks, got %d", len(specs))
	}
	// Spot-check against Table 2.
	if specs[0].Name != "i1" || specs[0].Gates != 59 || specs[0].Couplings != 232 {
		t.Fatalf("i1 spec wrong: %+v", specs[0])
	}
	if specs[9].Name != "i10" || specs[9].Gates != 3379 || specs[9].Couplings != 18318 {
		t.Fatalf("i10 spec wrong: %+v", specs[9])
	}
	if _, err := PaperSpec("i3"); err != nil {
		t.Fatal(err)
	}
	if _, err := PaperSpec("nope"); err == nil {
		t.Fatal("unknown benchmark must error")
	}
}

func TestPaperSmallCircuitsAnalyzable(t *testing.T) {
	for _, name := range []string{"i1", "i3"} {
		c, err := BuildPaper(name)
		if err != nil {
			t.Fatal(err)
		}
		r, err := sta.Analyze(c, sta.Options{})
		if err != nil {
			t.Fatal(err)
		}
		d := r.CircuitDelay()
		if d <= 0.05 || d > 10 {
			t.Fatalf("%s: circuit delay %g ns implausible", name, d)
		}
		m := noise.NewModel(c)
		an, err := m.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !an.Converged {
			t.Fatalf("%s: noise fixpoint did not converge", name)
		}
		if an.CircuitDelay() <= d {
			t.Fatalf("%s: crosstalk must increase delay (%g vs %g)", name, an.CircuitDelay(), d)
		}
	}
}

func TestCouplingLocality(t *testing.T) {
	c, err := Build(Spec{Name: "t", Gates: 120, Couplings: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, cp := range c.Couplings() {
		a, b := c.Net(cp.A), c.Net(cp.B)
		dx := a.X - b.X
		dy := a.Y - b.Y
		if dx*dx+dy*dy > 200*200 {
			t.Fatalf("coupling %d spans implausible distance", cp.ID)
		}
		if cp.Cc <= 0 {
			t.Fatalf("coupling %d non-positive", cp.ID)
		}
	}
}

func TestGeneratedDepthCreatesWindows(t *testing.T) {
	c, err := Build(Spec{Name: "t", Gates: 150, Couplings: 100, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	r, err := sta.Analyze(c, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Reconvergent fanin should open nonzero timing windows somewhere.
	found := false
	for _, n := range c.Nets() {
		if r.Window(n.ID).Width() > 0.01 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("expected at least one net with a non-degenerate timing window")
	}
}

func TestAllPaperBenchmarksBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("builds all ten benchmarks")
	}
	for _, spec := range Paper() {
		c, err := Build(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if c.NumGates() != spec.Gates {
			t.Errorf("%s: gates %d != %d", spec.Name, c.NumGates(), spec.Gates)
		}
		if c.NumCouplings() != spec.Couplings {
			t.Errorf("%s: couplings %d != %d", spec.Name, c.NumCouplings(), spec.Couplings)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
		if len(c.POs()) != 1 {
			t.Errorf("%s: want a single timing sink, got %d", spec.Name, len(c.POs()))
		}
		// The sink must be reachable from at least one primary input
		// through a chain of depth > 1.
		r, err := sta.Analyze(c, sta.Options{})
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if len(r.CriticalPath()) < 4 {
			t.Errorf("%s: critical path implausibly short (%d nets)", spec.Name, len(r.CriticalPath()))
		}
	}
}

func TestGeneratorEmitsOnlyLibraryCells(t *testing.T) {
	c, err := Build(Spec{Name: "t", Gates: 100, Couplings: 50, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range c.Gates() {
		if _, err := c.Lib.Cell(g.Cell.Name); err != nil {
			t.Fatalf("gate %s uses unknown cell %s", g.Name, g.Cell.Name)
		}
	}
}
