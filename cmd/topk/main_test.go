package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"topkagg"
)

func TestLoadCircuitValidation(t *testing.T) {
	if _, err := loadCircuit(topkagg.DefaultLibrary(), "", "", "", ""); err == nil {
		t.Fatal("must require a source")
	}
	if _, err := loadCircuit(topkagg.DefaultLibrary(), "x.ckt", "", "", "i1"); err == nil {
		t.Fatal("must reject multiple sources")
	}
	if _, err := loadCircuit(topkagg.DefaultLibrary(), "x.ckt", "", "x.spef", ""); err == nil {
		t.Fatal("-spef must pair with -verilog")
	}
	if _, err := loadCircuit(topkagg.DefaultLibrary(), "", "", "", "i1"); err != nil {
		t.Fatal(err)
	}
	if _, err := loadCircuit(topkagg.DefaultLibrary(), "", "", "", "nope"); err == nil {
		t.Fatal("unknown benchmark must error")
	}
}

func TestLoadCircuitFromNetlist(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.ckt")
	src := "circuit c\noutput y\ngate g1 INV_X1 a -> y\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := loadCircuit(topkagg.DefaultLibrary(), path, "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "c" {
		t.Fatalf("name = %q", c.Name)
	}
}

func TestLoadCircuitFromVerilogAndSPEF(t *testing.T) {
	dir := t.TempDir()
	vpath := filepath.Join(dir, "c.v")
	spath := filepath.Join(dir, "c.spef")
	vsrc := `module c (a, b, y);
  input a, b;
  output y;
  wire n1;
  NAND2_X1 g1 (.A(a), .B(b), .Y(n1));
  INV_X1 g2 (.A(n1), .Y(y));
endmodule
`
	ssrc := `*SPEF "IEEE 1481-1998"
*C_UNIT 1 FF
*R_UNIT 1 KOHM
*D_NET n1 6
*CAP
1 n1 6
2 n1 b 1.5
*END
`
	if err := os.WriteFile(vpath, []byte(vsrc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(spath, []byte(ssrc), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := loadCircuit(topkagg.DefaultLibrary(), "", vpath, spath, "")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumCouplings() != 1 {
		t.Fatalf("couplings = %d", c.NumCouplings())
	}
	n1, _ := c.NetByName("n1")
	if c.Net(n1).Cgnd != 6 {
		t.Fatal("SPEF parasitics not applied")
	}
	// Verilog without SPEF also loads.
	if _, err := loadCircuit(topkagg.DefaultLibrary(), "", vpath, "", ""); err != nil {
		t.Fatal(err)
	}
	// Missing files error cleanly.
	if _, err := loadCircuit(topkagg.DefaultLibrary(), "", filepath.Join(dir, "nope.v"), "", ""); err == nil {
		t.Fatal("missing verilog must error")
	}
	if _, err := loadCircuit(topkagg.DefaultLibrary(), "", vpath, filepath.Join(dir, "nope.spef"), ""); err == nil {
		t.Fatal("missing spef must error")
	}
}

func TestEmitJSON(t *testing.T) {
	c, err := topkagg.ParseNetlistString(`circuit j
output y
gate g1 INV_X1 a -> n1
gate g2 INV_X1 n1 -> y
gate h1 INV_X1 b -> m1
couple n1 m1 2.0
`)
	if err != nil {
		t.Fatal(err)
	}
	m := topkagg.NewModel(c)
	res, err := topkagg.TopKAddition(m, 1, topkagg.ExactOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := emitJSON(&buf, c, "add", res); err != nil {
		t.Fatal(err)
	}
	var out jsonResult
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if out.Circuit != "j" || out.Mode != "add" || len(out.PerK) != 1 {
		t.Fatalf("JSON content wrong: %+v", out)
	}
	if out.PerK[0].K != 1 || len(out.PerK[0].Couplings) != 1 {
		t.Fatalf("perK wrong: %+v", out.PerK)
	}
	if out.PerK[0].Couplings[0].NetA != "n1" || out.PerK[0].Couplings[0].NetB != "m1" {
		t.Fatalf("coupling names wrong: %+v", out.PerK[0].Couplings[0])
	}
}

// writeTestFiles lays out a small netlist and the named batch files in
// a temp dir and returns their paths keyed by name.
func writeTestFiles(t *testing.T, batches map[string]string) (ckt string, paths map[string]string) {
	t.Helper()
	dir := t.TempDir()
	ckt = filepath.Join(dir, "c.ckt")
	src := `circuit c
output y
gate g1 NAND2_X1 a b -> n1
gate g2 INV_X1 n1 -> n2
gate g3 INV_X1 n2 -> y
gate h1 INV_X1 p -> m1
gate h2 INV_X1 q -> m2
couple n1 m1 2.5
couple n2 m2 1.8
couple y m1 1.2
`
	if err := os.WriteFile(ckt, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	paths = map[string]string{}
	for name, content := range batches {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		paths[name] = p
	}
	return ckt, paths
}

// TestRunFlags drives the whole command through run() per flag
// combination, checking exit codes and output for the new -stats,
// -workers and -batch paths including their error cases.
func TestRunFlags(t *testing.T) {
	ckt, batches := writeTestFiles(t, map[string]string{
		"good.json":   `[{"op":"add","k":2},{"op":"elim","net":"y","k":2},{"op":"whatif","fix":[0,1]}]`,
		"empty.json":  `[]`,
		"badop.json":  `[{"op":"subtract","k":2}]`,
		"badnet.json": `[{"op":"add","net":"nosuch","k":2}]`,
		"badfix.json": `[{"op":"add","k":2},{"op":"whatif","fix":[99]}]`,
		"notjson.txt": `this is not json`,
	})
	tests := []struct {
		name       string
		args       []string
		wantCode   int
		wantOut    []string // substrings of stdout
		wantErr    string   // substring of stderr ("" = must be empty)
		jsonOutput bool     // stdout must parse as a JSON array
	}{
		{
			name:     "stats single mode",
			args:     []string{"-netlist", ckt, "-k", "2", "-stats"},
			wantCode: 0,
			wantOut:  []string{"top-2 add set", "prune-dom", "dig-hit", "dig-fb", "max-width", "envelope cache:"},
		},
		{
			name:     "stats with exact-prune escape hatch",
			args:     []string{"-netlist", ckt, "-k", "2", "-stats", "-exact-prune"},
			wantCode: 0,
			wantOut:  []string{"top-2 add set", "prune-dom", "dig-hit"},
		},
		{
			name:     "metrics shows prune histogram and digest counters",
			args:     []string{"-netlist", ckt, "-k", "2", "-metrics"},
			wantCode: 0,
			wantOut: []string{
				"core.topk.prune_ns",
				"core.topk.digest_hits",
				"core.topk.envcache_misses",
			},
		},
		{
			name:     "metrics single mode",
			args:     []string{"-netlist", ckt, "-k", "2", "-metrics"},
			wantCode: 0,
			wantOut: []string{
				"engine metrics:",
				"noise.fixpoint.sweeps",
				"noise.fixpoint.worklist_depth",
				"core.topk.candidates",
				"sta.incremental.cone_size",
				"span.noise.run",
				"span.core.topk",
			},
		},
		{
			name:     "metrics batch mode",
			args:     []string{"-netlist", ckt, "-batch", batches["good.json"], "-metrics"},
			wantCode: 0,
			wantOut: []string{
				"engine metrics:",
				"serve.queries",
				"serve.query_ns/addition",
				"serve.batch_size",
				"noise.incremental.runs",
			},
		},
		{
			name:     "debug endpoint announce",
			args:     []string{"-netlist", ckt, "-k", "1", "-debug-addr", "127.0.0.1:0"},
			wantCode: 0,
			wantOut:  []string{"debug endpoint on http://127.0.0.1:"},
		},
		{
			name:     "debug endpoint bad address",
			args:     []string{"-netlist", ckt, "-k", "1", "-debug-addr", "nosuchhost.invalid:99999"},
			wantCode: 1,
			wantErr:  "debug endpoint",
		},
		{
			name:     "negative workers",
			args:     []string{"-netlist", ckt, "-batch", batches["good.json"], "-workers", "-3"},
			wantCode: 1,
			wantErr:  "-workers must be >= 0",
		},
		{
			name:     "empty batch",
			args:     []string{"-netlist", ckt, "-batch", batches["empty.json"]},
			wantCode: 1,
			wantErr:  "contains no queries",
		},
		{
			name:     "missing batch file",
			args:     []string{"-netlist", ckt, "-batch", "nope.json"},
			wantCode: 1,
			wantErr:  "nope.json",
		},
		{
			name:     "malformed batch file",
			args:     []string{"-netlist", ckt, "-batch", batches["notjson.txt"]},
			wantCode: 1,
			wantErr:  "notjson.txt",
		},
		{
			name:     "unknown batch op",
			args:     []string{"-netlist", ckt, "-batch", batches["badop.json"]},
			wantCode: 1,
			wantErr:  `unknown op "subtract"`,
		},
		{
			name:     "unknown batch net",
			args:     []string{"-netlist", ckt, "-batch", batches["badnet.json"]},
			wantCode: 1,
			wantErr:  `no net "nosuch"`,
		},
		{
			name:     "batch query failure",
			args:     []string{"-netlist", ckt, "-batch", batches["badfix.json"]},
			wantCode: 1,
			wantOut:  []string{"error:", "no coupling 99"},
			wantErr:  "1 of 2 batch queries failed",
		},
		{
			name:     "good batch with stats and workers",
			args:     []string{"-netlist", ckt, "-batch", batches["good.json"], "-workers", "2", "-stats"},
			wantCode: 0,
			wantOut: []string{
				"batch: 3 queries", "(workers=2)",
				"[0] addition circuit k=2: delay",
				"[1] elimination net y k=2: delay",
				"[2] whatif circuit fix=[0 1]: delay",
				"1 fixpoint run(s)",
			},
		},
		{
			name:       "batch json output",
			args:       []string{"-netlist", ckt, "-batch", batches["good.json"], "-json"},
			wantCode:   0,
			jsonOutput: true,
		},
		{
			name:     "bad flag",
			args:     []string{"-nosuchflag"},
			wantCode: 2,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Fatalf("exit code = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					code, tc.wantCode, stdout.String(), stderr.String())
			}
			for _, want := range tc.wantOut {
				if !strings.Contains(stdout.String(), want) {
					t.Fatalf("stdout missing %q:\n%s", want, stdout.String())
				}
			}
			if tc.wantErr != "" && !strings.Contains(stderr.String(), tc.wantErr) {
				t.Fatalf("stderr missing %q:\n%s", tc.wantErr, stderr.String())
			}
			if tc.wantErr == "" && tc.wantCode == 0 && stderr.Len() != 0 {
				t.Fatalf("unexpected stderr: %s", stderr.String())
			}
			if tc.jsonOutput {
				var out []jsonBatchResp
				if err := json.Unmarshal(stdout.Bytes(), &out); err != nil {
					t.Fatalf("stdout is not a JSON array: %v\n%s", err, stdout.String())
				}
				if len(out) != 3 || out[0].Error != "" || out[0].DelayNs <= 0 {
					t.Fatalf("batch JSON content wrong: %+v", out)
				}
				if out[2].DelayNs <= 0 || len(out[2].PerK) != 0 {
					t.Fatalf("whatif JSON wrong: %+v", out[2])
				}
			}
		})
	}
}

// TestBatchDefaultsK: a batch entry without "k" inherits the -k flag.
func TestBatchDefaultsK(t *testing.T) {
	ckt, batches := writeTestFiles(t, map[string]string{
		"nok.json": `[{"op":"add"}]`,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-netlist", ckt, "-k", "2", "-batch", batches["nok.json"]}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "k=2") {
		t.Fatalf("batch must inherit -k: %s", stdout.String())
	}
}

// TestBudgetExhaustedSingle: a work budget too small for even one
// cardinality yields the timeout exit code and a degraded-result
// warning, not a crash or a silent success.
func TestBudgetExhaustedSingle(t *testing.T) {
	ckt, _ := writeTestFiles(t, nil)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-netlist", ckt, "-k", "2", "-budget", "1"}, &stdout, &stderr)
	if code != exitTimeout {
		t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s", code, exitTimeout, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "no cardinality completed within the budget") {
		t.Fatalf("stdout missing budget notice:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "work-budget") {
		t.Fatalf("stderr missing degradation reason:\n%s", stderr.String())
	}
}

// TestTimeoutExpiredSingle: an immediately-expiring timeout surfaces as
// the timeout exit code with a typed deadline error on stderr.
func TestTimeoutExpiredSingle(t *testing.T) {
	ckt, _ := writeTestFiles(t, nil)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-netlist", ckt, "-k", "2", "-timeout", "1ns"}, &stdout, &stderr)
	if code != exitTimeout {
		t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s", code, exitTimeout, stdout.String(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "deadline") {
		t.Fatalf("stderr missing deadline reason:\n%s", stderr.String())
	}
}

// TestBudgetSweepReachesDegradedAndComplete: growing the work budget
// walks the exit codes monotonically from timeout (nothing finished)
// through degraded (a best-effort prefix printed) to success, and the
// degraded run reports its partial curve.
func TestBudgetSweepReachesDegradedAndComplete(t *testing.T) {
	ckt, _ := writeTestFiles(t, nil)
	seen := map[int]bool{}
	for b := int64(1); b < 10000; b++ {
		var stdout, stderr bytes.Buffer
		code := run([]string{"-netlist", ckt, "-k", "2", "-budget", fmt.Sprint(b)}, &stdout, &stderr)
		seen[code] = true
		if code == exitDegraded {
			if !strings.Contains(stderr.String(), "degraded result (work-budget)") {
				t.Fatalf("degraded run missing stderr notice:\n%s", stderr.String())
			}
		}
		if code == exitOK {
			if stderr.Len() != 0 {
				t.Fatalf("complete run must not warn: %s", stderr.String())
			}
			break
		}
		if code != exitTimeout && code != exitDegraded {
			t.Fatalf("budget=%d: unexpected exit %d\nstderr:\n%s", b, code, stderr.String())
		}
	}
	for _, want := range []int{exitTimeout, exitDegraded, exitOK} {
		if !seen[want] {
			t.Fatalf("exit code %d never seen across the sweep (saw %v)", want, seen)
		}
	}
}

// TestBatchWithBudget: per-query limits apply inside a batch; stopped
// top-k queries degrade to partial responses (exit code degraded)
// while unaffected queries still answer completely.
func TestBatchWithBudget(t *testing.T) {
	ckt, batches := writeTestFiles(t, map[string]string{
		"mix.json": `[{"op":"add","k":2},{"op":"whatif","fix":[0]}]`,
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-netlist", ckt, "-batch", batches["mix.json"], "-budget", "1"}, &stdout, &stderr)
	if code != exitDegraded {
		t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s", code, exitDegraded, stdout.String(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "degraded (work-budget)") {
		t.Fatalf("stderr missing per-query degradation:\n%s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "whatif circuit fix=[0]: delay") {
		t.Fatalf("unlimited whatif must still answer:\n%s", stdout.String())
	}
}

// TestBatchJSONCarriesDegradation: -json batch output marks partial
// responses and their reason.
func TestBatchJSONCarriesDegradation(t *testing.T) {
	ckt, batches := writeTestFiles(t, map[string]string{
		"one.json": `[{"op":"add","k":2}]`,
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-netlist", ckt, "-batch", batches["one.json"], "-budget", "1", "-json"}, &stdout, &stderr)
	if code != exitDegraded {
		t.Fatalf("exit = %d, want %d\nstderr:\n%s", code, exitDegraded, stderr.String())
	}
	var out []jsonBatchResp
	if err := json.Unmarshal(stdout.Bytes(), &out); err != nil {
		t.Fatalf("stdout is not JSON: %v\n%s", err, stdout.String())
	}
	if len(out) != 1 || !out[0].Partial || out[0].Degraded != "work-budget" {
		t.Fatalf("JSON missing degradation marks: %+v", out)
	}
}

// TestNegativeLimitFlags: invalid limit values are rejected up front.
func TestNegativeLimitFlags(t *testing.T) {
	ckt, _ := writeTestFiles(t, nil)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-netlist", ckt, "-budget", "-5"}, &stdout, &stderr); code != exitErr {
		t.Fatalf("negative budget: exit %d, want %d", code, exitErr)
	}
	stderr.Reset()
	if code := run([]string{"-netlist", ckt, "-timeout", "-1s"}, &stdout, &stderr); code != exitErr {
		t.Fatalf("negative timeout: exit %d, want %d", code, exitErr)
	}
}
